// Package cmd_test smoke-tests the CLIs end to end through
// `go run`, covering the user-facing surface the README documents.
package cmd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
)

// builtBinary compiles the named cmd package once per test process and
// returns the binary path — for tests that assert on exit codes, which
// `go run` flattens to 1.
var (
	binMu    sync.Mutex
	binPaths = map[string]string{}
)

func builtBinary(t *testing.T, pkg string) string {
	t.Helper()
	binMu.Lock()
	defer binMu.Unlock()
	if p, ok := binPaths[pkg]; ok {
		return p
	}
	dir, err := os.MkdirTemp("", "pythia-cmd-test")
	if err != nil {
		t.Fatal(err)
	}
	bin := dir + "/" + pkg
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+pkg)
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	binPaths[pkg] = bin
	return bin
}

// expectExit2 runs the built pythia-bench with args and asserts the
// PR 1 flag-validation convention: exit status 2, the diagnostic, a
// usage dump, and no experiment output.
func expectExit2(t *testing.T, bin string, wantDiag string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	exit, isExit := err.(*exec.ExitError)
	if !isExit || exit.ExitCode() != 2 {
		t.Fatalf("want exit status 2, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), wantDiag) || !strings.Contains(string(out), "Usage") {
		t.Fatalf("missing diagnostic %q or usage:\n%s", wantDiag, out)
	}
	if strings.Contains(string(out), "E[tries]") {
		t.Fatalf("experiment must not run under invalid flags:\n%s", out)
	}
}

func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		// pythiac exits 1 on a detected fault — that is a success for
		// the attack flows; callers check the output instead.
		if _, isExit := err.(*exec.ExitError); !isExit {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
	}
	return string(out)
}

// runStdout is run with stdout and stderr kept separate, for tests that
// compare stdout byte-for-byte against a golden file.
func runStdout(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".."
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		if _, isExit := err.(*exec.ExitError); !isExit {
			t.Fatalf("go run %v: %v\n%s", args, err, stderr.String())
		}
	}
	return stdout.String()
}

func TestPythiacVanillaBends(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "vanilla", "-stdin", "testdata/attack.txt", "testdata/demo.c")
	if !strings.Contains(out, "access: ADMIN") {
		t.Fatalf("vanilla attack should bend:\n%s", out)
	}
}

func TestPythiacPythiaDetects(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-stdin", "testdata/attack.txt", "testdata/demo.c")
	if !strings.Contains(out, "FAULT") || !strings.Contains(out, "canary") {
		t.Fatalf("pythia should canary-fault:\n%s", out)
	}
	if strings.Contains(out, "ADMIN") {
		t.Fatalf("detection must precede the bend:\n%s", out)
	}
}

func TestPythiacBenignClean(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-stdin", "testdata/benign.txt", "testdata/demo.c")
	if !strings.Contains(out, "access: user alice") || strings.Contains(out, "FAULT") {
		t.Fatalf("benign run must be clean:\n%s", out)
	}
}

func TestPythiacAnalyze(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-analyze", "testdata/demo.c")
	for _, want := range []string{"input channels", "memory roots", "branches", "Eq.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, out)
		}
	}
}

func TestPythiacEmitIR(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-emit-ir", "testdata/demo.c")
	for _, want := range []string{"define i64 @main", "canary.set", "canary.check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("emitted IR missing %q", want)
		}
	}
}

func TestPythiaAttackList(t *testing.T) {
	out := run(t, "./cmd/pythia-attack", "-list")
	for _, want := range []string{"privesc-string-overflow", "pointer-dualism", "dfi-blindspot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("case list missing %q:\n%s", want, out)
		}
	}
}

func TestPythiaAttackSingleCase(t *testing.T) {
	out := run(t, "./cmd/pythia-attack", "-case", "scanf-scalar-taint", "-scheme", "pythia")
	if !strings.Contains(out, "detected") {
		t.Fatalf("expected detection row:\n%s", out)
	}
}

func TestPythiaBenchList(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-list")
	for _, want := range []string{"fig4a", "fig7b", "bruteforce", "fieldcanary"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment list missing %q:\n%s", want, out)
		}
	}
}

func TestPythiaBenchSingleExperiment(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-experiment", "bruteforce")
	if !strings.Contains(out, "E[tries]") || !strings.Contains(out, "16777216") {
		t.Fatalf("bruteforce table malformed:\n%s", out)
	}
}

func TestPythiaBenchMarkdownFormat(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-experiment", "bruteforce", "-format", "markdown")
	if !strings.Contains(out, "| quantity | value |") {
		t.Fatalf("markdown format broken:\n%s", out)
	}
}

// TestPythiaBenchRejectsUnknownFormat: an invalid -format must fail fast
// with exit status 2 and a usage message, not fall through to ascii.
// Built and invoked directly because `go run` maps every child failure
// to its own exit status 1.
func TestPythiaBenchRejectsUnknownFormat(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), `invalid -format "bogus"`,
		"-experiment", "bruteforce", "-format", "bogus")
}

// TestPythiaBenchRejectsBadRepeat / UnwritableSave / UnwritableMetrics /
// CompareWithoutBaseline: every continuous-benchmarking flag error must
// follow the -format convention — descriptive diagnostic, usage, exit 2,
// nothing executed.
func TestPythiaBenchRejectsBadRepeat(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), "invalid -repeat 0",
		"-experiment", "bruteforce", "-repeat", "0")
}

func TestPythiaBenchRejectsUnwritableSave(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), "unwritable -save path",
		"-experiment", "bruteforce", "-save", "/nonexistent-dir-pythia/x.json")
}

func TestPythiaBenchRejectsUnwritableMetrics(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), "unwritable -metrics path",
		"-experiment", "bruteforce", "-metrics", "/nonexistent-dir-pythia/m.json")
}

func TestPythiaBenchCompareWithoutBaseline(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), "-compare needs -baseline",
		"-experiment", "bruteforce", "-compare")
}

func TestPythiaBenchRejectsUnreadableBaseline(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), "invalid -baseline",
		"-experiment", "bruteforce", "-compare", "-baseline", "/nonexistent-dir-pythia/b.json")
}

// TestPythiaBenchSaveCompareCycle drives the whole continuous-bench
// loop: save a history record, compare against it (zero regressions,
// exit 0), then artificially deflate the baseline's modeled cycles and
// watch -compare exit non-zero with a rendered verdict table.
func TestPythiaBenchSaveCompareCycle(t *testing.T) {
	bin := builtBinary(t, "pythia-bench")
	hist := t.TempDir() + "/BENCH_test.json"

	save := exec.Command(bin, "-experiment", "fig4a", "-quick", "-repeat", "2", "-save", hist)
	save.Dir = ".."
	if out, err := save.CombinedOutput(); err != nil {
		t.Fatalf("save run: %v\n%s", err, out)
	}

	cmp := exec.Command(bin, "-experiment", "fig4a", "-quick", "-baseline", hist, "-compare")
	cmp.Dir = ".."
	out, err := cmp.CombinedOutput()
	if err != nil {
		t.Fatalf("self-compare must exit 0: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "compare-modeled") || !strings.Contains(string(out), "exact") {
		t.Fatalf("verdict table missing:\n%s", out)
	}
	if strings.Contains(string(out), "REGRESSED") {
		t.Fatalf("self-compare reported a regression:\n%s", out)
	}

	// Deflate every baseline cycle count by half: the unchanged current
	// run now looks 2x slower than baseline.
	f, err := os.Open(hist)
	if err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(f)
	var recs []map[string]any
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("history decode: %v", err)
		}
		recs = append(recs, m)
	}
	f.Close()
	if len(recs) == 0 {
		t.Fatal("no history records saved")
	}
	for _, rec := range recs {
		for _, r := range rec["runs"].([]any) {
			rm := r.(map[string]any)
			rm["cycles"] = rm["cycles"].(float64) * 0.5
		}
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(hist, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	cmp = exec.Command(bin, "-experiment", "fig4a", "-quick", "-baseline", hist, "-compare")
	cmp.Dir = ".."
	out, err = cmp.CombinedOutput()
	exit, isExit := err.(*exec.ExitError)
	if !isExit || exit.ExitCode() != 1 {
		t.Fatalf("inflated baseline must exit 1, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "REGRESSED") || !strings.Contains(string(out), "regression:") {
		t.Fatalf("regression verdicts missing:\n%s", out)
	}
}

// TestPythiaBenchServe starts a sweep with the live observability
// server and exercises every endpoint while experiments run.
func TestPythiaBenchServe(t *testing.T) {
	bin := builtBinary(t, "pythia-bench")
	cmd := exec.Command(bin, "-experiment", "fig4a", "-quick", "-repeat", "3", "-serve", "127.0.0.1:0")
	cmd.Dir = ".."
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The serve line prints before the sweep starts; find the address,
	// then keep draining stderr so the child never blocks on the pipe.
	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); strings.Contains(line, "# serving observability") && i >= 0 {
			base = strings.Fields(line[i:])[0]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatalf("serve line not found on stderr (stdout so far: %s)", stdout.String())
	}
	go io.Copy(io.Discard, stderr)

	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		return body
	}
	if got := string(get("/healthz")); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	var vars struct {
		Pythia json.RawMessage `json:"pythia"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil || len(vars.Pythia) == 0 {
		t.Errorf("/debug/vars missing pythia registry (err=%v)", err)
	}
	if len(get("/debug/pprof/")) == 0 {
		t.Error("/debug/pprof/ empty")
	}
	var hot struct {
		Sites []json.RawMessage `json:"sites"`
	}
	if err := json.Unmarshal(get("/hotsites?n=10"), &hot); err != nil {
		t.Errorf("/hotsites does not parse: %v", err)
	}
	var prog struct {
		Total   int `json:"total"`
		Repeats int `json:"repeats"`
	}
	if err := json.Unmarshal(get("/progress"), &prog); err != nil || prog.Total != 3 || prog.Repeats != 3 {
		t.Errorf("/progress wrong: %+v (err=%v)", prog, err)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve run failed: %v", err)
	}
	if !strings.Contains(stdout.String(), "fig4a") {
		t.Fatalf("table stream lost under -serve:\n%s", stdout.String())
	}
}

// TestPythiaAttackMetricsFile / TestPythiacMetricsFile: the -metrics
// flag parity — both CLIs dump the registry they populate.
func TestPythiaAttackMetricsFile(t *testing.T) {
	path := t.TempDir() + "/m.json"
	run(t, "./cmd/pythia-attack", "-case", "scanf-scalar-taint", "-scheme", "pythia", "-metrics", path)
	checkMetricsFile(t, path)
}

func TestPythiacMetricsFile(t *testing.T) {
	path := t.TempDir() + "/m.json"
	run(t, "./cmd/pythiac", "-scheme", "pythia", "-stdin", "testdata/benign.txt", "-metrics", path, "testdata/demo.c")
	checkMetricsFile(t, path)
}

func checkMetricsFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("metrics dump does not parse: %v\n%s", err, b)
	}
	if len(doc.Counters) == 0 {
		t.Fatalf("metrics dump has no counters: %s", b)
	}
	// The VM must have reported instruction traffic.
	found := false
	for name := range doc.Counters {
		if strings.HasPrefix(name, "vm.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no vm.* counters in dump: %s", b)
	}
}

// TestPythiaAttackMetricsText: "-" dumps aligned text to stderr.
func TestPythiaAttackMetricsText(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/pythia-attack", "-case", "scanf-scalar-taint", "-scheme", "pythia", "-metrics", "-")
	cmd.Dir = ".."
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		if _, isExit := err.(*exec.ExitError); !isExit {
			t.Fatalf("%v\n%s", err, stderr.String())
		}
	}
	if !strings.Contains(stderr.String(), "vm.instrs") {
		t.Fatalf("text metrics dump missing from stderr:\n%s", stderr.String())
	}
	if strings.Contains(stdout.String(), "vm.instrs") {
		t.Fatal("metrics text leaked onto stdout")
	}
}

// TestPythiaAttackJSON: -json must emit the outcome matrix as one JSON
// document, with a forensic report (non-empty window, address, segment)
// under every detection.
func TestPythiaAttackJSON(t *testing.T) {
	out := runStdout(t, "./cmd/pythia-attack", "-case", "scanf-scalar-taint", "-json")
	var doc struct {
		Outcomes []struct {
			Case      string `json:"case"`
			Scheme    string `json:"scheme"`
			Attack    string `json:"attack"`
			Detector  string `json:"detector"`
			Forensics *struct {
				Kind    string `json:"kind"`
				Func    string `json:"func"`
				Scheme  string `json:"scheme"`
				Addr    string `json:"addr"`
				Segment string `json:"segment"`
				Window  []struct {
					Func  string `json:"func"`
					Instr string `json:"instr"`
				} `json:"window"`
			} `json:"forensics"`
		} `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(doc.Outcomes) != 4 { // one case, all four schemes
		t.Fatalf("want 4 outcomes, got %d", len(doc.Outcomes))
	}
	detections := 0
	for _, o := range doc.Outcomes {
		if o.Attack != "detected" {
			continue
		}
		detections++
		if o.Detector == "" {
			t.Errorf("%s/%s: detection without detector", o.Case, o.Scheme)
		}
		f := o.Forensics
		if f == nil {
			t.Fatalf("%s/%s: detection without forensics", o.Case, o.Scheme)
		}
		if len(f.Window) == 0 || f.Kind == "" || f.Func == "" || f.Scheme != o.Scheme {
			t.Errorf("%s/%s: forensics incomplete: %+v", o.Case, o.Scheme, f)
		}
	}
	if detections == 0 {
		t.Fatal("no detections in the matrix")
	}
}

// TestPythiaAttackForensicsFlag: -forensics renders the flight window
// as an indented block under the table row.
func TestPythiaAttackForensicsFlag(t *testing.T) {
	out := run(t, "./cmd/pythia-attack", "-case", "scanf-scalar-taint", "-scheme", "pythia", "-forensics")
	for _, want := range []string{"last", "instructions:", "address:", "scheme: pythia"} {
		if !strings.Contains(out, want) {
			t.Fatalf("forensics block missing %q:\n%s", want, out)
		}
	}
}

// checkTraceFile asserts the file at path is valid Chrome trace_event
// JSON with at least min complete/instant events.
func checkTraceFile(t *testing.T, path string, min int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			PID   int64   `json:"pid"`
			TID   int64   `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) < min {
		t.Fatalf("trace malformed: unit=%q events=%d (want >= %d)", doc.DisplayTimeUnit, len(doc.TraceEvents), min)
	}
	for _, e := range doc.TraceEvents {
		if e.Name == "" || (e.Phase != "X" && e.Phase != "i") || e.PID == 0 || e.TID == 0 {
			t.Fatalf("bad event: %+v", e)
		}
	}
}

// TestPythiacTrace: -trace must write a loadable trace_event file
// covering compile, harden, and run (plus the fault instant here).
func TestPythiacTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-stdin", "testdata/attack.txt", "-trace", path, "testdata/demo.c")
	if !strings.Contains(out, "FAULT") {
		t.Fatalf("attack input should fault:\n%s", out)
	}
	checkTraceFile(t, path, 4) // compile + harden + run spans, fault instant
}

// TestPythiaBenchTrace: -trace on the bench harness records experiment
// and workload spans without disturbing the table stream.
func TestPythiaBenchTrace(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	out := runStdout(t, "./cmd/pythia-bench", "-experiment", "fig4a", "-quick", "-trace", path)
	if !strings.Contains(out, "fig4a") {
		t.Fatalf("table output lost:\n%s", out)
	}
	checkTraceFile(t, path, 10)
}

// TestPythiaBenchQuickGolden: with observability disabled, the -quick
// table stream must be byte-identical to the committed baseline. Guards
// every obs hook staying off by default. Skipped in -short (the CI test
// job); the CI golden step covers it with the committed file.
func TestPythiaBenchQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick sweep is slow; covered by the CI golden step")
	}
	want, err := os.ReadFile("../testdata/results_quick.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := runStdout(t, "./cmd/pythia-bench", "-quick")
	if got != string(want) {
		t.Fatalf("quick output diverged from testdata/results_quick.txt (len %d vs %d)", len(got), len(want))
	}
}

// TestPythiaFuzzList: every attack-corpus case is a fuzz target.
func TestPythiaFuzzList(t *testing.T) {
	out := run(t, "./cmd/pythia-fuzz", "-list")
	for _, want := range []string{"privesc-string-overflow", "heap-overflow", "dfi-blindspot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("target list missing %q:\n%s", want, out)
		}
	}
}

// TestPythiaFuzzRejectsUnknownTarget / TargetAndProfile: flag errors
// follow the exit-2 + usage convention of the other CLIs.
func TestPythiaFuzzRejectsUnknownTarget(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-fuzz"), `unknown target "bogus"`,
		"-target", "bogus", "-execs", "10")
}

func TestPythiaFuzzRejectsTargetAndProfile(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-fuzz"), "mutually exclusive",
		"-target", "dfi-blindspot", "-profile", "nginx", "-execs", "10")
}

// TestPythiaFuzzQuickDeterministic: the same seed and exec budget must
// produce the identical corpus digest and finding set, and the quick
// run must surface the paper's DFI pointer-arithmetic bypass.
func TestPythiaFuzzQuickDeterministic(t *testing.T) {
	type doc struct {
		Execs    int    `json:"execs"`
		Corpus   int    `json:"corpus"`
		Edges    int    `json:"edges"`
		Digest   string `json:"digest"`
		Findings []struct {
			Class  string `json:"class"`
			Target string `json:"target"`
			Scheme string `json:"scheme"`
			Input  string `json:"input"`
		} `json:"findings"`
	}
	parse := func(out string) doc {
		var d doc
		if err := json.Unmarshal([]byte(out), &d); err != nil {
			t.Fatalf("-json output does not parse: %v\n%s", err, out)
		}
		return d
	}
	a := parse(runStdout(t, "./cmd/pythia-fuzz", "-quick", "-seed", "1", "-execs", "200", "-json"))
	b := parse(runStdout(t, "./cmd/pythia-fuzz", "-quick", "-seed", "1", "-execs", "200", "-parallel", "2", "-json"))
	if a.Digest == "" || a.Digest != b.Digest {
		t.Fatalf("corpus digests diverged: %q vs %q", a.Digest, b.Digest)
	}
	if len(a.Findings) != len(b.Findings) || a.Corpus != b.Corpus || a.Edges != b.Edges {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
	found := false
	for _, fd := range a.Findings {
		if fd.Class == "bypass" && fd.Target == "dfi-blindspot" && fd.Scheme == "dfi" {
			found = true
		}
	}
	if !found {
		t.Fatalf("DFI blindspot bypass missing from findings: %+v", a.Findings)
	}
}

// TestPythiaFuzzKnownGate: the committed known-findings file accepts the
// deterministic quick run (exit 0); an empty known file rejects it
// (exit 1) — the CI smoke contract.
func TestPythiaFuzzKnownGate(t *testing.T) {
	bin := builtBinary(t, "pythia-fuzz")
	pass := exec.Command(bin, "-quick", "-seed", "1", "-execs", "200", "-known", "testdata/fuzz_known.txt")
	pass.Dir = ".."
	if out, err := pass.CombinedOutput(); err != nil {
		t.Fatalf("known findings must gate clean: %v\n%s", err, out)
	}

	empty := t.TempDir() + "/known.txt"
	if err := os.WriteFile(empty, []byte("# nothing expected\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	failCmd := exec.Command(bin, "-quick", "-seed", "1", "-execs", "200", "-known", empty)
	failCmd.Dir = ".."
	out, err := failCmd.CombinedOutput()
	exit, isExit := err.(*exec.ExitError)
	if !isExit || exit.ExitCode() != 1 {
		t.Fatalf("new findings must exit 1, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "new finding") {
		t.Fatalf("gating diagnostic missing:\n%s", out)
	}
}

// TestPythiaFuzzExportAndRepro: exported seeds replay through -repro,
// and the malicious dfi-blindspot seed shows the differential — DFI
// bent (bypass) while Pythia detects, with forensics rendered.
func TestPythiaFuzzExportAndRepro(t *testing.T) {
	dir := t.TempDir()
	out := run(t, "./cmd/pythia-fuzz", "-target", "dfi-blindspot", "-export-seeds", dir)
	if !strings.Contains(out, "exported 2 seed files") {
		t.Fatalf("export summary wrong:\n%s", out)
	}
	out = run(t, "./cmd/pythia-fuzz", "-target", "dfi-blindspot", "-forensics",
		"-repro", dir+"/dfi-blindspot/seed1")
	for _, want := range []string{"repro dfi-blindspot", "bypass", "canary fault", "scheme: pythia"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repro output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "dfi       bent") {
		t.Fatalf("DFI must bend on the reproducer:\n%s", out)
	}
}

// TestPythiaFuzzMetricsFile: -metrics parity with the other CLIs; the
// dump must carry the fuzz.* counters and gauges.
func TestPythiaFuzzMetricsFile(t *testing.T) {
	path := t.TempDir() + "/m.json"
	run(t, "./cmd/pythia-fuzz", "-target", "dfi-blindspot", "-seed", "1", "-execs", "100", "-metrics", path)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("metrics dump does not parse: %v\n%s", err, b)
	}
	if doc.Counters["fuzz.execs"] < 100 {
		t.Fatalf("fuzz.execs missing or short: %s", b)
	}
	if doc.Gauges["fuzz.corpus"] <= 0 || doc.Gauges["fuzz.edges"] <= 0 || doc.Gauges["fuzz.execs_per_sec"] <= 0 {
		t.Fatalf("fuzz gauges missing: %s", b)
	}
	if doc.Counters["fuzz.findings.bypass"] == 0 {
		t.Fatalf("bypass finding counter missing: %s", b)
	}
}

// TestPythiaBenchJSON: -json must emit one well-formed document carrying
// the table data and the cache statistics.
func TestPythiaBenchJSON(t *testing.T) {
	out := runStdout(t, "./cmd/pythia-bench", "-experiment", "fig4a", "-quick", "-json")
	var doc struct {
		Repeat    int     `json:"repeat"`
		PoolSize  int     `json:"pool_size"`
		PrewarmMS float64 `json:"prewarm_ms"`
		TotalMS   float64 `json:"total_ms"`
		Env       struct {
			GoVersion  string `json:"go_version"`
			GOOS       string `json:"goos"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			NumCPU     int    `json:"num_cpu"`
		} `json:"env"`
		CacheStats struct {
			RunHits   int `json:"RunHits"`
			RunMisses int `json:"RunMisses"`
		} `json:"cache_stats"`
		Experiments []struct {
			ID             string     `json:"id"`
			Columns        []string   `json:"columns"`
			Rows           [][]string `json:"rows"`
			ElapsedMS      float64    `json:"elapsed_ms"`
			CacheRunHits   int        `json:"cache_run_hits"`
			CacheRunMisses int        `json:"cache_run_misses"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "fig4a" {
		t.Fatalf("unexpected document: %+v", doc)
	}
	e := doc.Experiments[0]
	if len(e.Rows) == 0 || len(e.Columns) == 0 {
		t.Fatalf("table data missing: %+v", e)
	}
	// The wall-time/cache-stats stderr lines must be mirrored here: the
	// prewarm executed every declared task (pool > 0, misses > 0) and the
	// experiment itself was then served from cache.
	if doc.PoolSize <= 0 || doc.TotalMS <= 0 || doc.PrewarmMS <= 0 {
		t.Fatalf("timing/pool fields missing: pool=%d prewarm=%v total=%v", doc.PoolSize, doc.PrewarmMS, doc.TotalMS)
	}
	if doc.CacheStats.RunMisses == 0 {
		t.Fatalf("cache stats missing: %+v", doc.CacheStats)
	}
	// The environment fingerprint rides along so saved documents are
	// interpretable on other hosts.
	if doc.Repeat != 1 || !strings.HasPrefix(doc.Env.GoVersion, "go") ||
		doc.Env.GOOS == "" || doc.Env.GOMAXPROCS <= 0 || doc.Env.NumCPU <= 0 {
		t.Fatalf("env fingerprint missing from -json: repeat=%d env=%+v", doc.Repeat, doc.Env)
	}
	if e.CacheRunHits == 0 || e.CacheRunMisses != 0 {
		t.Fatalf("per-experiment cache delta wrong (want all hits post-prewarm): %+v", e)
	}
}

// TestPythiaBenchRejectsBadAttribution: a negative site count follows
// the exit-2 + usage convention of the other flag validations.
func TestPythiaBenchRejectsBadAttribution(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythia-bench"), "invalid -attribution -1",
		"-experiment", "bruteforce", "-attribution", "-1")
}

// TestPythiaBenchAttribution: -attribution renders the per-category
// overhead ledger on stderr — prefixed with "# " so the table stream on
// stdout stays golden — and the closing summary line certifies that the
// category sums reconcile with the measured overhead deltas.
func TestPythiaBenchAttribution(t *testing.T) {
	cmd := exec.Command("go", "run", "./cmd/pythia-bench", "-experiment", "fig4a", "-quick", "-attribution", "3")
	cmd.Dir = ".."
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("attribution run failed: %v\n%s", err, stderr.String())
	}
	for _, want := range []string{"# attribution", "categories reconcile", "residual"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("attribution report missing %q on stderr:\n%s", want, stderr.String())
		}
	}
	if !strings.Contains(stdout.String(), "fig4a") {
		t.Fatalf("table stream lost under -attribution:\n%s", stdout.String())
	}
	if strings.Contains(stdout.String(), "attribution") {
		t.Fatal("attribution report leaked onto stdout")
	}
	// Every report line on stderr is comment-prefixed.
	for _, line := range strings.Split(strings.TrimRight(stderr.String(), "\n"), "\n") {
		if line != "" && !strings.HasPrefix(line, "# ") {
			t.Fatalf("unprefixed stderr line %q", line)
		}
	}
}

// TestPythiaBenchServeAttribution: the live server exposes the
// attribution rows and histogram snapshots while a sweep runs.
func TestPythiaBenchServeAttribution(t *testing.T) {
	bin := builtBinary(t, "pythia-bench")
	cmd := exec.Command(bin, "-experiment", "fig4a", "-quick", "-repeat", "3", "-serve", "127.0.0.1:0")
	cmd.Dir = ".."
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); strings.Contains(line, "# serving observability") && i >= 0 {
			base = strings.Fields(line[i:])[0]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatal("serve line not found on stderr")
	}
	go io.Copy(io.Discard, stderr)

	// Both endpoints are armed for the whole run: they answer 200 with a
	// well-formed document even before the first cell completes.
	resp, err := http.Get(base + "/api/attribution")
	if err != nil {
		t.Fatalf("GET /api/attribution: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/attribution status %d:\n%s", resp.StatusCode, body)
	}
	var attribDoc struct {
		Attribution []json.RawMessage `json:"attribution"`
	}
	if err := json.Unmarshal(body, &attribDoc); err != nil {
		t.Fatalf("/api/attribution does not parse: %v\n%s", err, body)
	}

	resp, err = http.Get(base + "/api/histo")
	if err != nil {
		t.Fatalf("GET /api/histo: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/histo status %d:\n%s", resp.StatusCode, body)
	}
	var histoDoc struct {
		Histos map[string]json.RawMessage `json:"histos"`
	}
	if err := json.Unmarshal(body, &histoDoc); err != nil {
		t.Fatalf("/api/histo does not parse: %v\n%s", err, body)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("serve run failed: %v", err)
	}
}

// TestPythiaFuzzServeAttribution404: the fuzz server never arms the
// attribution engine, so /api/attribution answers 404 — not an empty
// 200, which would read as "measured, found no overhead" — while
// /api/histo works because metrics are armed.
func TestPythiaFuzzServeAttribution404(t *testing.T) {
	bin := builtBinary(t, "pythia-fuzz")
	cmd := exec.Command(bin, "-quick", "-seed", "1", "-execs", "5000", "-serve", "127.0.0.1:0")
	cmd.Dir = ".."
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	base := ""
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "http://"); strings.Contains(line, "# serving observability") && i >= 0 {
			base = strings.Fields(line[i:])[0]
			break
		}
	}
	if base == "" {
		cmd.Process.Kill()
		t.Fatal("serve line not found on stderr")
	}
	go io.Copy(io.Discard, stderr)

	resp, err := http.Get(base + "/api/attribution")
	if err != nil {
		t.Fatalf("GET /api/attribution: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/api/attribution without an armed engine: status %d, want 404", resp.StatusCode)
	}

	resp, err = http.Get(base + "/api/histo")
	if err != nil {
		t.Fatalf("GET /api/histo: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/histo with armed metrics: status %d, want 200", resp.StatusCode)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("fuzz serve run failed: %v", err)
	}
}
