// Package cmd_test smoke-tests the three CLIs end to end through
// `go run`, covering the user-facing surface the README documents.
package cmd_test

import (
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

func run(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = ".."
	out, err := cmd.CombinedOutput()
	if err != nil {
		// pythiac exits 1 on a detected fault — that is a success for
		// the attack flows; callers check the output instead.
		if _, isExit := err.(*exec.ExitError); !isExit {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
	}
	return string(out)
}

func TestPythiacVanillaBends(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "vanilla", "-stdin", "testdata/attack.txt", "testdata/demo.c")
	if !strings.Contains(out, "access: ADMIN") {
		t.Fatalf("vanilla attack should bend:\n%s", out)
	}
}

func TestPythiacPythiaDetects(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-stdin", "testdata/attack.txt", "testdata/demo.c")
	if !strings.Contains(out, "FAULT") || !strings.Contains(out, "canary") {
		t.Fatalf("pythia should canary-fault:\n%s", out)
	}
	if strings.Contains(out, "ADMIN") {
		t.Fatalf("detection must precede the bend:\n%s", out)
	}
}

func TestPythiacBenignClean(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-stdin", "testdata/benign.txt", "testdata/demo.c")
	if !strings.Contains(out, "access: user alice") || strings.Contains(out, "FAULT") {
		t.Fatalf("benign run must be clean:\n%s", out)
	}
}

func TestPythiacAnalyze(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-analyze", "testdata/demo.c")
	for _, want := range []string{"input channels", "memory roots", "branches", "Eq.1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, out)
		}
	}
}

func TestPythiacEmitIR(t *testing.T) {
	out := run(t, "./cmd/pythiac", "-scheme", "pythia", "-emit-ir", "testdata/demo.c")
	for _, want := range []string{"define i64 @main", "canary.set", "canary.check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("emitted IR missing %q", want)
		}
	}
}

func TestPythiaAttackList(t *testing.T) {
	out := run(t, "./cmd/pythia-attack", "-list")
	for _, want := range []string{"privesc-string-overflow", "pointer-dualism", "dfi-blindspot"} {
		if !strings.Contains(out, want) {
			t.Fatalf("case list missing %q:\n%s", want, out)
		}
	}
}

func TestPythiaAttackSingleCase(t *testing.T) {
	out := run(t, "./cmd/pythia-attack", "-case", "scanf-scalar-taint", "-scheme", "pythia")
	if !strings.Contains(out, "detected") {
		t.Fatalf("expected detection row:\n%s", out)
	}
}

func TestPythiaBenchList(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-list")
	for _, want := range []string{"fig4a", "fig7b", "bruteforce", "fieldcanary"} {
		if !strings.Contains(out, want) {
			t.Fatalf("experiment list missing %q:\n%s", want, out)
		}
	}
}

func TestPythiaBenchSingleExperiment(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-experiment", "bruteforce")
	if !strings.Contains(out, "E[tries]") || !strings.Contains(out, "16777216") {
		t.Fatalf("bruteforce table malformed:\n%s", out)
	}
}

func TestPythiaBenchMarkdownFormat(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-experiment", "bruteforce", "-format", "markdown")
	if !strings.Contains(out, "| quantity | value |") {
		t.Fatalf("markdown format broken:\n%s", out)
	}
}

// TestPythiaBenchRejectsUnknownFormat: an invalid -format must fail fast
// with exit status 2 and a usage message, not fall through to ascii.
// Built and invoked directly because `go run` maps every child failure
// to its own exit status 1.
func TestPythiaBenchRejectsUnknownFormat(t *testing.T) {
	bin := t.TempDir() + "/pythia-bench"
	build := exec.Command("go", "build", "-o", bin, "./cmd/pythia-bench")
	build.Dir = ".."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-experiment", "bruteforce", "-format", "bogus")
	out, err := cmd.CombinedOutput()
	exit, isExit := err.(*exec.ExitError)
	if !isExit || exit.ExitCode() != 2 {
		t.Fatalf("want exit status 2, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), `invalid -format "bogus"`) || !strings.Contains(string(out), "Usage") {
		t.Fatalf("missing diagnostic/usage:\n%s", out)
	}
	if strings.Contains(string(out), "E[tries]") {
		t.Fatalf("experiment must not run under an invalid format:\n%s", out)
	}
}

// TestPythiaBenchJSON: -json must emit one well-formed document carrying
// the table data and the cache statistics.
func TestPythiaBenchJSON(t *testing.T) {
	out := run(t, "./cmd/pythia-bench", "-experiment", "bruteforce", "-json")
	var doc struct {
		Experiments []struct {
			ID      string     `json:"id"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "bruteforce" {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if len(doc.Experiments[0].Rows) == 0 || len(doc.Experiments[0].Columns) != 2 {
		t.Fatalf("table data missing: %+v", doc.Experiments[0])
	}
}
