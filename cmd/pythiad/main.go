// Command pythiad is the hardening-as-a-service daemon: a persistent
// multi-tenant HTTP front end over the staged compile/harden pipeline
// and the decoded VM. Clients POST mini-C sources to /api/v1/submit
// and get back a verdict (the shared attack oracle's classification)
// plus execution counters and, on faults, forensics. Builds are
// memoized in-process and, with -cache-dir, in the persistent
// content-addressed artifact store, so a daemon restart keeps its
// compile/harden work.
//
// The service API is mounted over the observability mux, so the
// daemon serves /healthz, /metricz, /debug/pprof/*, /api/journal and
// /api/coverage alongside:
//
//	POST /api/v1/submit   {source, scheme, stdin, fuel, max_pages, tenant}
//	GET  /api/v1/stats    engine, pipeline and artifact-store stats
//	GET  /api/v1/tenants  per-tenant counters
//
// Admission is bounded: a full queue or a tenant over its in-flight
// quota gets 429 with Retry-After, never unbounded blocking. SIGINT or
// SIGTERM drains gracefully — new submissions get 503 while in-flight
// requests finish — then exits 0.
//
// Usage:
//
//	pythiad -addr 127.0.0.1:8077
//	pythiad -cache-dir /var/cache/pythia -cache-max-bytes 104857600
//	pythiad -workers 8 -queue 128 -tenant-inflight 8 -journal d.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8077", "listen address (host:port; :0 picks an ephemeral port)")
		cacheDir    = flag.String("cache-dir", "", "persistent artifact store directory (\"\" = in-process memoization only)")
		cacheMax    = flag.Int64("cache-max-bytes", 0, "artifact store budget; prunes oldest-first after cache-filling builds (0 = unbounded)")
		workers     = flag.Int("workers", 0, "executor goroutines (0 = NumCPU)")
		queue       = flag.Int("queue", 0, "admission queue depth (0 = default 64)")
		maxFuel     = flag.Int64("max-fuel", 0, "per-request fuel ceiling (0 = default)")
		maxPages    = flag.Int("max-pages", 0, "per-request page-quota ceiling, 4 KiB pages (0 = default)")
		tenantLimit = flag.Int("tenant-inflight", 0, "per-tenant concurrent admission quota (0 = 2x workers)")
		journalPath = flag.String("journal", "", "stream the causal run journal to this file as JSONL")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		usageError("unexpected arguments: %v", flag.Args())
	}
	if *cacheMax < 0 {
		usageError("-cache-max-bytes must be >= 0")
	}
	if *cacheMax > 0 && *cacheDir == "" {
		usageError("-cache-max-bytes needs -cache-dir")
	}
	if *workers < 0 || *queue < 0 || *maxFuel < 0 || *maxPages < 0 || *tenantLimit < 0 {
		usageError("sizing flags must be >= 0")
	}

	// The daemon's whole observability set is armed unconditionally: a
	// service is long-running by nature, so metrics, coverage and the
	// fault flight recorder are part of its contract, not an opt-in.
	sess := &obs.Session{
		Metrics:     obs.Default(),
		Coverage:    obs.NewCoverageAgg(),
		FlightDepth: obs.DefaultFlightWindow,
	}
	if *journalPath != "" {
		j, err := obs.OpenJournal(*journalPath)
		if err != nil {
			usageError("invalid -journal: %v", err)
		}
		sess.Journal = j
	} else {
		sess.Journal = obs.NewJournal()
	}
	obs.Start(sess)
	defer obs.Stop()

	engine, err := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		MaxFuel:        *maxFuel,
		MaxPages:       *maxPages,
		TenantInflight: *tenantLimit,
		CacheDir:       *cacheDir,
		CacheMaxBytes:  *cacheMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythiad:", err)
		os.Exit(1)
	}

	mux := obs.NewMux(sess)
	engine.Mount(mux)
	srv, err := obs.StartServerHandler(*addr, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythiad:", err)
		os.Exit(1)
	}
	// The listen line goes to stderr so harnesses (and the cmd tests)
	// can scrape the bound port under -addr :0.
	fmt.Fprintf(os.Stderr, "pythiad: listening on %s (POST /api/v1/submit)\n", srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(os.Stderr, "pythiad: %v, draining\n", sig)

	// Shutdown order: stop admissions first so late HTTP requests get
	// 503, let the HTTP server finish in-flight handlers (2s grace),
	// then drain the engine's queue and close the journal.
	engine.BeginDrain()
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pythiad: shutdown:", err)
	}
	engine.Close()
	if err := sess.Journal.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "pythiad: journal:", err)
	}
	fmt.Fprintln(os.Stderr, "pythiad: drained, bye")
}

// usageError prints the diagnostic plus usage and exits 2 — the flag
// contract shared by every CLI in this repo.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pythiad: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
