// Command pythia-fuzz is the coverage-guided differential attack
// fuzzer: it mutates inputs against the attack-corpus programs (or a
// workload profile), steers by branch-edge coverage from the VM, and
// reports every input whose verdict matrix diverges from the vanilla
// ground truth — bypasses, missed bends, false-positive candidates,
// and divergences — each minimized to a reproducer with forensics.
//
// Usage:
//
//	pythia-fuzz -quick -seed 1 -execs 2000    # deterministic smoke run
//	pythia-fuzz -target dfi-blindspot -t 30s  # wall-clock budget, one target
//	pythia-fuzz -profile json-parse           # fuzz a workload benchmark
//	pythia-fuzz -out findings/                # persist reproducer+report+case per finding
//	pythia-fuzz -known testdata/fuzz_known.txt # CI gate: fail only on NEW finding keys
//	pythia-fuzz -export-seeds seeds/          # write the hand-written corpus as seed files
//	pythia-fuzz -journal j.jsonl              # causal run journal (JSONL)
//	pythia-fuzz -repro findings/bypass-dfi-blindspot-dfi/input -target dfi-blindspot -forensics
//	pythia-fuzz -list
//
// A fixed -seed with an -execs budget is fully deterministic: corpus
// digest, finding keys, and reproducer bytes are identical across runs
// and across -parallel values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fuzz"
	"repro/internal/obs"
)

// usageError prints the diagnostic plus usage and exits 2 — the flag
// validation convention shared with the other CLIs.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pythia-fuzz: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pythia-fuzz:", err)
	os.Exit(1)
}

func main() {
	var (
		seed        = flag.Int64("seed", 1, "RNG seed driving the whole run")
		execs       = flag.Int("execs", 0, "evaluation budget (0 = library default in exec mode)")
		duration    = flag.Duration("t", 0, "wall-clock budget (nondeterministic; 0 = exec budget only)")
		parallel    = flag.Int("parallel", 0, "evaluation worker count (0 = GOMAXPROCS)")
		batch       = flag.Int("batch", 0, "mutants per target per round (0 = default)")
		quick       = flag.Bool("quick", false, "fuzz the 3-target smoke subset")
		targetName  = flag.String("target", "", "fuzz only this attack-corpus target (also selects the -repro target)")
		profileName = flag.String("profile", "", "fuzz this workload profile's generated benchmark instead of the corpus")
		benignOnly  = flag.Bool("benign-seeds", false, "seed only benign inputs, so attacks must be rediscovered by mutation")
		outDir      = flag.String("out", "", "write each finding (reproducer, report, case candidate) under this directory")
		exportDir   = flag.String("export-seeds", "", "export the targets' seed corpus under this directory and exit")
		reproPath   = flag.String("repro", "", "replay this reproducer file through the scheme matrix and exit")
		forensics   = flag.Bool("forensics", false, "with -repro: render the flight-recorder report of detecting runs")
		knownPath   = flag.String("known", "", "known-findings file; exit 1 on new bypass/missed/false-positive keys")
		list        = flag.Bool("list", false, "list fuzz targets and exit")
		jsonOut     = flag.Bool("json", false, "emit the run summary as one JSON document")
		verbose     = flag.Bool("v", false, "log per-round progress to stderr")
		metrics     = flag.String("metrics", "", "write a metrics registry dump — counters, gauges, and the fuzz.round.ms / vm.run.ms latency histograms — to this file (\"-\" = text to stderr)")
		journalOut  = flag.String("journal", "", "stream the causal run journal to this file as JSONL")
		serveAddr   = flag.String("serve", "", "serve live observability HTTP endpoints on this address during the run")
		cacheDir    = flag.String("cache-dir", "", "persist compile/harden artifacts in this directory (content-addressed, shared across processes)")
	)
	flag.Parse()

	if *targetName != "" && *profileName != "" {
		usageError("-target and -profile are mutually exclusive")
	}
	if *execs < 0 {
		usageError("invalid -execs %d", *execs)
	}
	if *cacheDir != "" {
		pl, err := core.OpenPipeline(*cacheDir)
		if err != nil {
			usageError("invalid -cache-dir: %v", err)
		}
		fuzz.UsePipeline(pl)
	}

	if *list {
		for _, t := range fuzz.Targets() {
			fmt.Printf("%-26s %d seeds\n", t.Name, len(t.Seeds))
		}
		return
	}

	targets := fuzz.Targets()
	switch {
	case *profileName != "":
		t, err := fuzz.ProfileTarget(*profileName)
		if err != nil {
			usageError("%v", err)
		}
		targets = []fuzz.Target{*t}
	case *targetName != "":
		t := fuzz.TargetByName(*targetName)
		if t == nil {
			usageError("unknown target %q (see -list)", *targetName)
		}
		targets = []fuzz.Target{*t}
	case *quick:
		targets = fuzz.QuickTargets()
	}

	if *exportDir != "" {
		n, err := fuzz.ExportSeeds(*exportDir, targets)
		if err != nil {
			fail(err)
		}
		fmt.Printf("exported %d seed files for %d targets under %s\n", n, len(targets), *exportDir)
		return
	}

	if *reproPath != "" {
		if len(targets) != 1 {
			usageError("-repro needs -target or -profile to name the victim program")
		}
		repro(&targets[0], *reproPath, *forensics)
		return
	}

	var known map[string]bool
	if *knownPath != "" {
		var err error
		if known, err = fuzz.LoadKnown(*knownPath); err != nil {
			usageError("invalid -known: %v", err)
		}
	}

	// Observability session: metrics for -metrics/-serve, the causal
	// journal for -journal (fuzz rounds and findings become spans and
	// points), progress for the server's /progress endpoint.
	writeMetrics := func() {}
	if *metrics != "" || *serveAddr != "" || *journalOut != "" {
		sess := &obs.Session{Metrics: obs.Default()}
		if *serveAddr != "" {
			sess.Progress = &obs.Progress{}
		}
		if *journalOut != "" {
			j, err := obs.OpenJournal(*journalOut)
			if err != nil {
				usageError("invalid -journal: %v", err)
			}
			sess.Journal = j
		}
		obs.Start(sess)
		defer obs.Stop()
		if *serveAddr != "" {
			srv, err := obs.StartServer(*serveAddr, sess)
			if err != nil {
				usageError("-serve %s: %v", *serveAddr, err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "# serving observability on http://%s (/healthz /metricz /debug/vars /progress /api/journal /api/spans /api/histo)\n", srv.Addr())
		}
		reg, metricsPath := sess.Metrics, *metrics
		writeMetrics = func() {
			obs.Stop()
			if err := sess.Journal.Close(); err != nil {
				fail(err)
			}
			if metricsPath == "" {
				return
			}
			if metricsPath == "-" {
				reg.WriteText(os.Stderr)
				return
			}
			f, err := os.Create(metricsPath)
			if err == nil {
				err = reg.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fail(err)
			}
		}
	}

	opts := fuzz.Options{
		Seed:            *seed,
		Execs:           *execs,
		Duration:        *duration,
		Parallel:        *parallel,
		Batch:           *batch,
		BenignSeedsOnly: *benignOnly,
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	res, err := fuzz.Run(targets, opts)
	if err != nil {
		fail(err)
	}

	if *outDir != "" {
		for _, fd := range res.Findings {
			fdir, err := fuzz.WriteFinding(*outDir, fd)
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "# wrote %s\n", fdir)
		}
	}

	if *jsonOut {
		out, err := json.MarshalIndent(struct {
			Targets  int             `json:"targets"`
			Execs    int             `json:"execs"`
			Rounds   int             `json:"rounds"`
			Corpus   int             `json:"corpus"`
			Edges    int             `json:"edges"`
			Digest   string          `json:"digest"`
			Elapsed  float64         `json:"elapsed_ms"`
			Findings []*fuzz.Finding `json:"findings"`
		}{
			Targets: len(targets), Execs: res.Execs, Rounds: res.Rounds,
			Corpus: res.Corpus, Edges: res.Edges,
			Digest:  fmt.Sprintf("%016x", res.Digest),
			Elapsed: float64(res.Elapsed.Nanoseconds()) / 1e6,
			Findings: func() []*fuzz.Finding {
				if res.Findings == nil {
					return []*fuzz.Finding{}
				}
				return res.Findings
			}(),
		}, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Printf("targets %d  execs %d  rounds %d  corpus %d  edges %d  digest %016x  elapsed %s\n",
			len(targets), res.Execs, res.Rounds, res.Corpus, res.Edges, res.Digest,
			res.Elapsed.Round(time.Millisecond))
		fmt.Printf("findings (%d):\n", len(res.Findings))
		for _, fd := range res.Findings {
			fmt.Printf("  %-36s input %s (%d bytes, exec %d)\n", fd.Key(), fd.InputQ, len(fd.Input), fd.Exec)
		}
	}

	exitCode := 0
	if known != nil {
		for _, fd := range res.Findings {
			if known[fd.Key()] {
				continue
			}
			gate := fd.Class != "divergence"
			tag := "warning"
			if gate {
				tag = "FAIL"
				exitCode = 1
			}
			fmt.Fprintf(os.Stderr, "pythia-fuzz: %s: new finding %s not in %s\n", tag, fd.Key(), *knownPath)
		}
	}
	writeMetrics()
	os.Exit(exitCode)
}

// repro replays one reproducer file through the full scheme matrix.
func repro(t *fuzz.Target, path string, withForensics bool) {
	input, err := fuzz.ReadSeedFile(path)
	if err != nil {
		usageError("invalid -repro: %v", err)
	}
	outs, err := fuzz.Replay(t, input, withForensics)
	if err != nil {
		fail(err)
	}
	fmt.Printf("repro %s < %s (%d bytes)\n", t.Name, path, len(input))
	fmt.Printf("%-9s %-9s %s\n", "scheme", "verdict", "class")
	for _, o := range outs {
		class := o.Class
		if class == "" {
			class = "-"
		}
		fmt.Printf("%-9v %-9s %s\n", o.Scheme, o.Verdict, class)
		if o.Forensics != "" {
			fmt.Print(o.Forensics)
		}
	}
}
