// Command pythia-bench regenerates every table and figure of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	pythia-bench                  # run every experiment
//	pythia-bench -experiment fig4a
//	pythia-bench -quick           # 3-benchmark smoke subset
//	pythia-bench -list
//	pythia-bench -format markdown
//	pythia-bench -parallel 4      # pre-warm worker count (0 = GOMAXPROCS)
//	pythia-bench -json            # one machine-readable JSON document
//	pythia-bench -cpuprofile cpu.out -memprofile mem.out
//
// All (profile, scheme) executions the selected experiments declare are
// pre-warmed through a shared memoized run cache, so overlapping
// experiments pay for each pair once. Tables go to stdout; per-experiment
// wall times and cache statistics go to stderr, keeping the table stream
// byte-identical between sequential fresh and parallel cached runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/report"
)

// renderers is the single place the -format flag is resolved; unknown
// formats are rejected before any experiment runs.
var renderers = map[string]func(*report.Table) string{
	"ascii":    (*report.Table).String,
	"markdown": (*report.Table).Markdown,
	"csv":      (*report.Table).CSV,
}

type jsonTable struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

type jsonDoc struct {
	Quick       bool        `json:"quick"`
	Parallel    int         `json:"parallel"`
	PrewarmMS   float64     `json:"prewarm_ms"`
	TotalMS     float64     `json:"total_ms"`
	CacheStats  bench.Stats `json:"cache_stats"`
	Experiments []jsonTable `json:"experiments"`
}

func main() {
	var (
		expID    = flag.String("experiment", "", "run only this experiment id (see -list)")
		quick    = flag.Bool("quick", false, "run on a 3-benchmark subset")
		format   = flag.String("format", "ascii", "output format: ascii, csv, markdown")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "pre-warm worker pool size (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON document instead of rendered tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			}
		}()
	}

	render, ok := renderers[*format]
	if !ok {
		fmt.Fprintf(os.Stderr, "pythia-bench: invalid -format %q (valid: ascii, csv, markdown)\n", *format)
		flag.Usage()
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	exps := bench.All()
	if *expID != "" {
		e, err := bench.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Parallel = *parallel

	start := time.Now()
	cfg.Prewarm(exps)
	prewarm := time.Since(start)

	doc := jsonDoc{Quick: *quick, Parallel: *parallel, PrewarmMS: ms(prewarm)}
	for _, e := range exps {
		t0 := time.Now()
		tbl, err := e.Run(cfg)
		elapsed := time.Since(t0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			doc.Experiments = append(doc.Experiments, jsonTable{
				ID: tbl.ID, Title: tbl.Title, Columns: tbl.Columns,
				Rows: tbl.Rows, Notes: tbl.Notes, ElapsedMS: ms(elapsed),
			})
			continue
		}
		fmt.Println(render(tbl))
		fmt.Fprintf(os.Stderr, "# %-12s %7.3fs\n", e.ID, elapsed.Seconds())
	}

	total := time.Since(start)
	stats := cfg.Runner().Stats()
	if *jsonOut {
		doc.TotalMS = ms(total)
		doc.CacheStats = stats
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}
	fmt.Fprintf(os.Stderr, "# total %.3fs (prewarm %.3fs); runs %d executed / %d served cached; analyses %d executed / %d served cached\n",
		total.Seconds(), prewarm.Seconds(),
		stats.RunMisses, stats.RunHits, stats.AnalysisMisses, stats.AnalysisHits)
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
