// Command pythia-bench regenerates every table and figure of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	pythia-bench                  # run every experiment
//	pythia-bench -experiment fig4a
//	pythia-bench -quick           # 3-benchmark smoke subset
//	pythia-bench -list
//	pythia-bench -format markdown
//	pythia-bench -parallel 4      # pre-warm worker count (0 = GOMAXPROCS)
//	pythia-bench -json            # one machine-readable JSON document
//	pythia-bench -cpuprofile cpu.out -memprofile mem.out
//	pythia-bench -trace out.json  # Chrome trace_event timeline
//	pythia-bench -hotsites 20     # top-N IR sites by attributed cycles
//	pythia-bench -metrics m.json  # metrics registry dump ("-" = text to stderr)
//
// All (profile, scheme) executions the selected experiments declare are
// pre-warmed through a shared memoized run cache, so overlapping
// experiments pay for each pair once. Tables go to stdout; per-experiment
// wall times and cache statistics go to stderr, keeping the table stream
// byte-identical between sequential fresh and parallel cached runs.
// The observability flags (-trace, -hotsites, -metrics) likewise leave
// stdout untouched: traces and metrics go to their files, the hot-site
// report to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/report"
)

// renderers is the single place the -format flag is resolved; unknown
// formats are rejected before any experiment runs.
var renderers = map[string]func(*report.Table) string{
	"ascii":    (*report.Table).String,
	"markdown": (*report.Table).Markdown,
	"csv":      (*report.Table).CSV,
}

type jsonTable struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`

	// Run-cache traffic attributed to this experiment (delta across its
	// Run call; prewarmed work shows up as hits here).
	CacheRunHits   int `json:"cache_run_hits"`
	CacheRunMisses int `json:"cache_run_misses"`
}

type jsonDoc struct {
	Quick       bool        `json:"quick"`
	Parallel    int         `json:"parallel"`
	PoolSize    int         `json:"pool_size"`
	PrewarmMS   float64     `json:"prewarm_ms"`
	TotalMS     float64     `json:"total_ms"`
	CacheStats  bench.Stats `json:"cache_stats"`
	Experiments []jsonTable `json:"experiments"`
}

func main() {
	var (
		expID    = flag.String("experiment", "", "run only this experiment id (see -list)")
		quick    = flag.Bool("quick", false, "run on a 3-benchmark subset")
		format   = flag.String("format", "ascii", "output format: ascii, csv, markdown")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", 0, "pre-warm worker pool size (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit one machine-readable JSON document instead of rendered tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file")
		hotsites = flag.Int("hotsites", 0, "report the top-N IR sites by attributed cycles (0 = off)")
		metrics  = flag.String("metrics", "", "write a metrics registry dump to this file (\"-\" = text to stderr)")
	)
	flag.Parse()

	var sess *obs.Session
	if *traceOut != "" || *hotsites > 0 || *metrics != "" {
		sess = &obs.Session{}
		if *traceOut != "" {
			sess.Trace = obs.NewTraceLog()
		}
		if *hotsites > 0 {
			sess.Sites = perf.NewSiteProf()
		}
		if *metrics != "" {
			sess.Metrics = obs.Default()
		}
		obs.Start(sess)
		defer obs.Stop()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			}
		}()
	}

	render, ok := renderers[*format]
	if !ok {
		fmt.Fprintf(os.Stderr, "pythia-bench: invalid -format %q (valid: ascii, csv, markdown)\n", *format)
		flag.Usage()
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	exps := bench.All()
	if *expID != "" {
		e, err := bench.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	cfg := bench.DefaultConfig()
	cfg.Quick = *quick
	cfg.Parallel = *parallel

	start := time.Now()
	pool := cfg.Prewarm(exps)
	prewarm := time.Since(start)

	doc := jsonDoc{Quick: *quick, Parallel: *parallel, PoolSize: pool, PrewarmMS: ms(prewarm)}
	for _, e := range exps {
		before := cfg.Runner().Stats()
		t0 := time.Now()
		endSpan := obs.TraceSpan("experiment "+e.ID, "bench")
		tbl, err := e.Run(cfg)
		endSpan()
		elapsed := time.Since(t0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		after := cfg.Runner().Stats()
		if *jsonOut {
			doc.Experiments = append(doc.Experiments, jsonTable{
				ID: tbl.ID, Title: tbl.Title, Columns: tbl.Columns,
				Rows: tbl.Rows, Notes: tbl.Notes, ElapsedMS: ms(elapsed),
				CacheRunHits:   after.RunHits - before.RunHits,
				CacheRunMisses: after.RunMisses - before.RunMisses,
			})
			continue
		}
		fmt.Println(render(tbl))
		fmt.Fprintf(os.Stderr, "# %-12s %7.3fs\n", e.ID, elapsed.Seconds())
	}

	total := time.Since(start)
	stats := cfg.Runner().Stats()
	if *jsonOut {
		doc.TotalMS = ms(total)
		doc.CacheStats = stats
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		fmt.Fprintf(os.Stderr, "# total %.3fs (prewarm %.3fs); runs %d executed / %d served cached; analyses %d executed / %d served cached\n",
			total.Seconds(), prewarm.Seconds(),
			stats.RunMisses, stats.RunHits, stats.AnalysisMisses, stats.AnalysisHits)
	}

	if sess != nil {
		finishObs(sess, *traceOut, *metrics, *hotsites)
	}
}

// finishObs writes the session's trace, metrics, and hot-site outputs.
// Everything goes to files or stderr so the table stream on stdout stays
// byte-identical with and without observability.
func finishObs(sess *obs.Session, traceOut, metrics string, hotsites int) {
	if traceOut != "" {
		if err := sess.Trace.WriteFile(traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# trace: %d events -> %s\n", sess.Trace.Len(), traceOut)
	}
	if metrics != "" {
		if metrics == "-" {
			sess.Metrics.WriteText(os.Stderr)
		} else {
			f, err := os.Create(metrics)
			if err == nil {
				err = sess.Metrics.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
				os.Exit(1)
			}
		}
	}
	if hotsites > 0 {
		top := sess.Sites.Top(hotsites)
		fmt.Fprintf(os.Stderr, "# hot sites (top %d of %d by attributed cycles)\n", len(top), sess.Sites.Len())
		fmt.Fprintf(os.Stderr, "# %12s %14s  %-20s %s\n", "count", "cycles", "function", "instr")
		for _, h := range top {
			fmt.Fprintf(os.Stderr, "# %12d %14.0f  @%-20s %s\n", h.Count, h.Cycles, h.Func, h.Instr)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
