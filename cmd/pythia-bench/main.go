// Command pythia-bench regenerates every table and figure of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	pythia-bench                  # run every experiment
//	pythia-bench -experiment fig4a
//	pythia-bench -quick           # 3-benchmark smoke subset
//	pythia-bench -list
//	pythia-bench -format markdown
//	pythia-bench -parallel 4      # pre-warm worker count (0 = GOMAXPROCS)
//	pythia-bench -json            # one machine-readable JSON document
//	pythia-bench -cpuprofile cpu.out -memprofile mem.out
//	pythia-bench -trace out.json  # Chrome trace_event timeline (derived from the journal)
//	pythia-bench -journal j.jsonl # causal run journal, one JSON event per line
//	pythia-bench -coverage        # defense-coverage report (static vs exercised check sites)
//	pythia-bench -hotsites 20     # top-N IR sites by attributed cycles
//	pythia-bench -attribution 5   # overhead attribution: per-category cycle
//	                              # decomposition vs vanilla, top-5 sites per cell
//	pythia-bench -metrics m.json  # metrics registry dump ("-" = text to stderr)
//	pythia-bench -cache-dir .pythia-cache  # persistent compile/harden artifacts
//	pythia-bench -suite 3x2x3     # generated parameterized suite instead of
//	                              # the 16 fixed profiles (ptr x depth x chan)
//
// Continuous benchmarking:
//
//	pythia-bench -quick -repeat 3 -save BENCH_abc123.json
//	pythia-bench -quick -repeat 3 -baseline BENCH_abc123.json -compare
//	pythia-bench -serve 127.0.0.1:8080   # live observability server
//
// -repeat re-runs the whole sweep N times with a fresh run cache each
// time, collecting wall-time samples; modeled metrics are deterministic
// and identical across repeats. -save appends a history record (env
// fingerprint, per-run modeled cycles, wall samples, metrics snapshot)
// to the file. -compare measures the current run against the newest
// record in -baseline: modeled metrics gate the exit code (non-zero on
// growth beyond -threshold percent), wall times are judged with robust
// statistics and reported only. -serve exposes /healthz, /debug/vars,
// /debug/pprof/*, /hotsites and /progress while the sweep runs.
//
// All (profile, scheme) executions the selected experiments declare are
// pre-warmed through a shared memoized run cache, so overlapping
// experiments pay for each pair once. Tables go to stdout; per-experiment
// wall times and cache statistics go to stderr, keeping the table stream
// byte-identical between sequential fresh and parallel cached runs.
// The observability flags (-trace, -journal, -coverage, -hotsites,
// -attribution, -metrics, -serve) likewise leave stdout untouched:
// traces, journals and metrics go to their files, the hot-site,
// coverage and attribution reports to stderr, the server to its socket.
//
// -attribution N arms the overhead attribution engine: every hardened
// run's per-check-site cycle profile is diffed against the vanilla run
// of the same source and decomposed into check-kind categories (pa,
// canary, dfi, meta, residual) that provably sum to the total overhead
// delta; the top-N costliest sites of each cell are listed. The same
// data is embedded in -save records (schema v2), so a later -compare
// can blame a regression on the categories and sites that grew.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/workload"
)

// renderers is the single place the -format flag is resolved; unknown
// formats are rejected before any experiment runs.
var renderers = map[string]func(*report.Table) string{
	"ascii":    (*report.Table).String,
	"markdown": (*report.Table).Markdown,
	"csv":      (*report.Table).CSV,
}

type jsonTable struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`

	// WallMSSamples carries one wall time per -repeat (ElapsedMS is the
	// first sample, kept for compatibility).
	WallMSSamples []float64 `json:"wall_ms_samples,omitempty"`

	// Run-cache traffic attributed to this experiment (delta across its
	// Run call; prewarmed work shows up as hits here).
	CacheRunHits   int `json:"cache_run_hits"`
	CacheRunMisses int `json:"cache_run_misses"`
}

type jsonCompare struct {
	Baseline    string      `json:"baseline"`
	Threshold   float64     `json:"threshold_pct"`
	Regressions []string    `json:"regressions"`
	Tables      []jsonTable `json:"tables"`
}

type jsonDoc struct {
	Quick       bool                 `json:"quick"`
	Parallel    int                  `json:"parallel"`
	Repeat      int                  `json:"repeat"`
	Env         bench.EnvFingerprint `json:"env"`
	PoolSize    int                  `json:"pool_size"`
	PrewarmMS   float64              `json:"prewarm_ms"`
	TotalMS     float64              `json:"total_ms"`
	CacheStats  bench.Stats          `json:"cache_stats"`
	Experiments []jsonTable          `json:"experiments"`
	Compare     *jsonCompare         `json:"compare,omitempty"`
}

// usageError prints the diagnostic plus usage and exits 2 — the flag
// validation convention shared by every error path below.
func usageError(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pythia-bench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// checkWritable verifies the file at path can be created or appended
// to, without truncating existing content.
func checkWritable(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}

func main() {
	var (
		expID       = flag.String("experiment", "", "run only this experiment id (see -list)")
		quick       = flag.Bool("quick", false, "run on a 3-benchmark subset")
		format      = flag.String("format", "ascii", "output format: ascii, csv, markdown")
		list        = flag.Bool("list", false, "list experiment ids and exit")
		parallel    = flag.Int("parallel", 0, "pre-warm worker pool size (0 = GOMAXPROCS)")
		jsonOut     = flag.Bool("json", false, "emit one machine-readable JSON document instead of rendered tables")
		cpuProf     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf     = flag.String("memprofile", "", "write a heap profile to this file on exit")
		traceOut    = flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (derived from the causal journal)")
		journal     = flag.String("journal", "", "stream the causal run journal to this file as JSONL")
		coverage    = flag.Bool("coverage", false, "report defense-check coverage (static vs exercised sites) to stderr")
		hotsites    = flag.Int("hotsites", 0, "report the top-N IR sites by attributed cycles (0 = off)")
		attribution = flag.Int("attribution", 0, "report per-category overhead attribution vs vanilla with the top-N sites per cell (0 = off)")
		metrics     = flag.String("metrics", "", "write a metrics registry dump to this file (\"-\" = text to stderr)")
		repeat      = flag.Int("repeat", 1, "run the sweep N times (fresh run cache each) collecting wall-time samples")
		savePath    = flag.String("save", "", "append a bench history record (BENCH_<rev>.json format) to this file")
		baseline    = flag.String("baseline", "", "history file to compare against (newest record)")
		compare     = flag.Bool("compare", false, "compare this run against -baseline and render a verdict table")
		threshold   = flag.Float64("threshold", 0, "allowed modeled-metric growth percent before -compare regresses")
		serveAddr   = flag.String("serve", "", "serve live observability HTTP endpoints on this address during the run")
		cacheDir    = flag.String("cache-dir", "", "persist compile/harden artifacts in this directory (content-addressed, shared across processes)")
		suiteSpec   = flag.String("suite", "", "run on a generated parameterized suite instead of the fixed profiles (PxDxC, e.g. 3x2x3)")
	)
	flag.Parse()

	render, ok := renderers[*format]
	if !ok {
		usageError("invalid -format %q (valid: ascii, csv, markdown)", *format)
	}
	if *repeat < 1 {
		usageError("invalid -repeat %d: need at least one run per experiment", *repeat)
	}
	if *attribution < 0 {
		usageError("invalid -attribution %d: need a non-negative site count", *attribution)
	}
	if *compare && *baseline == "" {
		usageError("-compare needs -baseline <file> to compare against")
	}
	var suiteProfiles []workload.Profile
	if *suiteSpec != "" {
		if *quick {
			usageError("-quick selects among the fixed profiles and cannot combine with -suite")
		}
		spec, err := workload.ParseSuite(*suiteSpec)
		if err != nil {
			usageError("invalid -suite: %v", err)
		}
		suiteProfiles = spec.Profiles()
	}
	if *cacheDir != "" {
		// Validate eagerly so a bad path fails before any work runs.
		if _, err := core.OpenPipeline(*cacheDir); err != nil {
			usageError("invalid -cache-dir: %v", err)
		}
	}
	var baseRec *bench.Record
	if *compare {
		var err error
		if baseRec, err = bench.LatestRecord(*baseline); err != nil {
			usageError("invalid -baseline: %v", err)
		}
	}
	if *savePath != "" {
		if err := checkWritable(*savePath); err != nil {
			usageError("unwritable -save path: %v", err)
		}
	}
	if *metrics != "" && *metrics != "-" {
		if err := checkWritable(*metrics); err != nil {
			usageError("unwritable -metrics path: %v", err)
		}
	}

	var sess *obs.Session
	if *traceOut != "" || *journal != "" || *coverage || *hotsites > 0 || *attribution > 0 || *metrics != "" || *savePath != "" || *compare || *serveAddr != "" {
		sess = &obs.Session{}
		if *traceOut != "" || *journal != "" {
			// The journal is the primary record; -trace renders a derived
			// Chrome timeline from it at exit.
			if *journal != "" {
				j, err := obs.OpenJournal(*journal)
				if err != nil {
					usageError("invalid -journal: %v", err)
				}
				sess.Journal = j
			} else {
				sess.Journal = obs.NewJournal()
			}
		}
		if *coverage {
			sess.Coverage = obs.NewCoverageAgg()
		}
		if *hotsites > 0 || *serveAddr != "" {
			sess.Sites = perf.NewSiteProf()
		}
		if *metrics != "" || *savePath != "" || *serveAddr != "" {
			sess.Metrics = obs.Default()
		}
		// Attribution arms for -save and -compare too, so every history
		// record carries blame data and the perf gate can use it.
		if *attribution > 0 || *savePath != "" || *compare || *serveAddr != "" {
			sess.Attrib = obs.NewAttribAgg()
		}
		if *serveAddr != "" {
			sess.Progress = &obs.Progress{}
		}
		obs.Start(sess)
		defer obs.Stop()
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			}
		}()
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	exps := bench.All()
	if *expID != "" {
		e, err := bench.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		exps = []bench.Experiment{e}
	}

	if *serveAddr != "" {
		srv, err := obs.StartServer(*serveAddr, sess)
		if err != nil {
			usageError("-serve %s: %v", *serveAddr, err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "# serving observability on http://%s (/healthz /metricz /debug/vars /debug/pprof/ /hotsites /progress /api/journal /api/spans /api/coverage /api/attribution /api/histo)\n", srv.Addr())
	}

	if sess != nil && sess.Progress != nil {
		sess.Progress.Begin(len(exps)**repeat, *repeat)
	}

	// The repeat loop: each repeat gets a fresh config (and with it a
	// fresh run cache), so every repeat pays the full modeled execution
	// and its wall times are honest samples rather than cache lookups.
	// Tables and the JSON document come from the first repeat — modeled
	// results are deterministic, so later repeats only add wall samples.
	doc := jsonDoc{Quick: *quick, Parallel: *parallel, Repeat: *repeat, Env: bench.Fingerprint()}
	tables := make([]*report.Table, len(exps))
	wallSamples := make([][]float64, len(exps))
	var totalMS, prewarmMS []float64
	var firstRunner *bench.Runner
	start := time.Now()
	for rep := 1; rep <= *repeat; rep++ {
		cfg := bench.DefaultConfig()
		cfg.Quick = *quick
		cfg.Parallel = *parallel
		if suiteProfiles != nil {
			cfg.Profiles = suiteProfiles
		}
		if *cacheDir != "" {
			// A fresh Pipeline per repeat over the same directory: repeats
			// keep an honest in-process cold start while the compile and
			// harden stages come warm from disk.
			pl, err := core.OpenPipeline(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
				os.Exit(1)
			}
			cfg.Pipeline = pl
		}

		repStart := time.Now()
		pool := cfg.Prewarm(exps)
		prewarm := time.Since(repStart)
		prewarmMS = append(prewarmMS, ms(prewarm))
		if rep == 1 {
			doc.PoolSize = pool
			doc.PrewarmMS = ms(prewarm)
		}

		for i, e := range exps {
			before := cfg.Runner().Stats()
			if sess != nil && sess.Progress != nil {
				sess.Progress.StartExperiment(e.ID, rep)
			}
			t0 := time.Now()
			endSpan := obs.TraceSpan("experiment "+e.ID, "bench")
			tbl, err := e.Run(cfg)
			endSpan()
			elapsed := time.Since(t0)
			if sess != nil && sess.Progress != nil {
				sess.Progress.FinishExperiment(e.ID, rep, elapsed)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "pythia-bench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			wallSamples[i] = append(wallSamples[i], ms(elapsed))
			if rep > 1 {
				continue
			}
			tables[i] = tbl
			after := cfg.Runner().Stats()
			if *jsonOut {
				doc.Experiments = append(doc.Experiments, jsonTable{
					ID: tbl.ID, Title: tbl.Title, Columns: tbl.Columns,
					Rows: tbl.Rows, Notes: tbl.Notes, ElapsedMS: ms(elapsed),
					CacheRunHits:   after.RunHits - before.RunHits,
					CacheRunMisses: after.RunMisses - before.RunMisses,
				})
				continue
			}
			fmt.Println(render(tbl))
			fmt.Fprintf(os.Stderr, "# %-12s %7.3fs\n", e.ID, elapsed.Seconds())
		}
		totalMS = append(totalMS, ms(time.Since(repStart)))
		if rep == 1 {
			firstRunner = cfg.Runner()
		} else {
			fmt.Fprintf(os.Stderr, "# repeat %d/%d %7.3fs\n", rep, *repeat, time.Since(repStart).Seconds())
		}
	}
	if sess != nil && sess.Progress != nil {
		sess.Progress.Finish()
	}

	total := time.Since(start)
	stats := firstRunner.Stats()
	if *jsonOut {
		doc.TotalMS = ms(total)
		doc.CacheStats = stats
		if *repeat > 1 {
			for i := range doc.Experiments {
				doc.Experiments[i].WallMSSamples = wallSamples[i]
			}
		}
	} else {
		fmt.Fprintf(os.Stderr, "# total %.3fs (prewarm %.3fs); runs %d executed / %d served cached; analyses %d executed / %d served cached\n",
			total.Seconds(), prewarmMS[0]/1e3,
			stats.RunMisses, stats.RunHits, stats.AnalysisMisses, stats.AnalysisHits)
	}

	// History: build the record once, then save and/or compare with it.
	var rec *bench.Record
	if *savePath != "" || *compare {
		rec = &bench.Record{
			SchemaVersion: bench.HistorySchema,
			SavedAt:       time.Now().UTC().Format(time.RFC3339),
			Env:           doc.Env,
			Quick:         *quick,
			Repeat:        *repeat,
			TotalMS:       totalMS,
			PrewarmMS:     prewarmMS,
			Runs:          bench.RunRecordsFrom(firstRunner),
		}
		for i, e := range exps {
			rec.Experiments = append(rec.Experiments, bench.ExperimentRecord{
				ID:          e.ID,
				TableDigest: bench.TableDigest(tables[i]),
				WallMS:      wallSamples[i],
			})
		}
		if sess != nil && sess.Metrics != nil {
			snap := sess.Metrics.Snapshot()
			rec.Metrics = &snap
		}
		if sess != nil && sess.Attrib != nil {
			rec.Attribution = bench.AttribRecordsFrom(sess.Attrib)
		}
	}
	if *savePath != "" {
		if err := bench.AppendRecord(*savePath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# saved history record -> %s\n", *savePath)
	}

	regressed := false
	if *compare {
		cmp := bench.Compare(rec, baseRec, *threshold)
		regs := cmp.Regressions()
		regressed = len(regs) > 0
		if *jsonOut {
			jc := &jsonCompare{Baseline: *baseline, Threshold: *threshold, Regressions: regs}
			if jc.Regressions == nil {
				jc.Regressions = []string{}
			}
			for _, t := range cmp.Tables() {
				jc.Tables = append(jc.Tables, jsonTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes})
			}
			doc.Compare = jc
		} else {
			for _, t := range cmp.Tables() {
				fmt.Println(render(t))
			}
		}
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "pythia-bench: regression: %s\n", r)
		}
	}

	if *jsonOut {
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}

	if sess != nil {
		finishObs(sess, *traceOut, *journal, *metrics, *hotsites, *attribution, *coverage)
	}
	if regressed {
		os.Exit(1)
	}
}

// finishObs writes the session's trace, journal, metrics, hot-site,
// attribution and coverage outputs. Everything goes to files or stderr
// so the table stream on stdout stays byte-identical with and without
// observability. A reconciliation failure in the attribution accounting
// is a hard error (exit 1): it means cycles were dropped or
// double-counted between the VM and the report.
func finishObs(sess *obs.Session, traceOut, journal, metrics string, hotsites, attribution int, coverage bool) {
	// Attribution first: its journal points must land before the journal
	// is closed and the trace derived.
	var reconcileErr error
	if sess.Attrib != nil {
		rows := sess.Attrib.Rows()
		for i := range rows {
			r := &rows[i]
			if err := r.Reconcile(); err != nil && reconcileErr == nil {
				reconcileErr = err
			}
			if j := sess.Journal; j != nil {
				attrs := map[string]string{
					"profile":      r.Profile,
					"scheme":       r.Scheme,
					"overhead_pct": fmt.Sprintf("%.4f", r.OverheadPct),
					"delta_cycles": fmt.Sprintf("%.3f", r.Delta),
				}
				for cat, v := range r.Categories {
					attrs["cat."+cat] = fmt.Sprintf("%.3f", v)
				}
				j.Point("attribution "+r.Profile+" ["+r.Scheme+"]", "bench", attrs)
			}
		}
		if attribution > 0 {
			fmt.Fprint(os.Stderr, bench.AttributionTable(rows, attribution).Prefixed("# "))
			if reconcileErr == nil {
				fmt.Fprintf(os.Stderr, "# attribution: %d row(s), categories reconcile with overhead deltas within %g\n", len(rows), obs.ReconcileTol)
			}
		}
	}
	if traceOut != "" {
		if err := sess.Journal.WriteTraceFile(traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# trace: %d journal events -> %s\n", sess.Journal.Len(), traceOut)
	}
	if journal != "" {
		if err := sess.Journal.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# journal: %d events -> %s\n", sess.Journal.Len(), journal)
	}
	if metrics != "" {
		if metrics == "-" {
			sess.Metrics.WriteText(os.Stderr)
		} else {
			f, err := os.Create(metrics)
			if err == nil {
				err = sess.Metrics.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-bench:", err)
				os.Exit(1)
			}
		}
	}
	if hotsites > 0 {
		top := sess.Sites.Top(hotsites)
		fmt.Fprintf(os.Stderr, "# hot sites (top %d of %d by attributed cycles)\n", len(top), sess.Sites.Len())
		fmt.Fprintf(os.Stderr, "# %12s %14s  %-20s %s\n", "count", "cycles", "function", "instr")
		for _, h := range top {
			fmt.Fprintf(os.Stderr, "# %12d %14.0f  @%-20s %s\n", h.Count, h.Cycles, h.Func, h.Instr)
		}
	}
	if coverage {
		sess.Coverage.WriteReport(os.Stderr)
	}
	if reconcileErr != nil {
		fmt.Fprintln(os.Stderr, "pythia-bench:", reconcileErr)
		os.Exit(1)
	}
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
