// Command pythia-bench regenerates every table and figure of the paper's
// evaluation on the simulated machine.
//
// Usage:
//
//	pythia-bench                  # run every experiment
//	pythia-bench -experiment fig4a
//	pythia-bench -quick           # 3-benchmark smoke subset
//	pythia-bench -list
//	pythia-bench -format markdown
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		expID  = flag.String("experiment", "", "run only this experiment id (see -list)")
		quick  = flag.Bool("quick", false, "run on a 3-benchmark subset")
		format = flag.String("format", "ascii", "output format: ascii, markdown, csv")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.DefaultConfig()
	cfg.Quick = *quick

	run := func(e bench.Experiment) {
		t, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pythia-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "markdown":
			fmt.Println(t.Markdown())
		case "csv":
			fmt.Println(t.CSV())
		default:
			fmt.Println(t.String())
		}
	}

	if *expID != "" {
		e, err := bench.ByID(*expID)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-bench:", err)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
	}
}
