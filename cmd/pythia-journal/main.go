// Command pythia-journal validates and summarizes causal run journals
// (the JSONL streams `-journal` writes on the other CLIs). It is the CI
// smoke job's schema gate: every line must parse as a known-field
// journal event, ids must be positive and unique, parents must
// reference an earlier begun span, timestamps must be non-decreasing,
// and ends must match opens. Spans left open are legal (a killed run
// truncates the stream) and are reported in the stats.
//
// Usage:
//
//	pythia-journal -validate run.jsonl   # exit 1 on any schema violation
//	pythia-journal -validate -           # read the stream from stdin
//	pythia-journal -spans run.jsonl      # also list reconstructed spans
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/obs"
)

func main() {
	var (
		validate = flag.String("validate", "", "journal file to validate (\"-\" = stdin)")
		spans    = flag.String("spans", "", "journal file to validate and list reconstructed spans for (\"-\" = stdin)")
	)
	flag.Parse()

	path := *validate
	listSpans := false
	if *spans != "" {
		if path != "" && path != *spans {
			fmt.Fprintln(os.Stderr, "pythia-journal: -validate and -spans name different files")
			os.Exit(2)
		}
		path, listSpans = *spans, true
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "usage: pythia-journal -validate file.jsonl | -spans file.jsonl")
		flag.Usage()
		os.Exit(2)
	}

	var raw []byte
	var err error
	if path == "-" {
		raw, err = io.ReadAll(os.Stdin)
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pythia-journal:", err)
		os.Exit(1)
	}

	st, err := obs.ValidateJournal(bytes.NewReader(raw))
	if err != nil {
		fmt.Fprintf(os.Stderr, "pythia-journal: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("ok: %d events (%d spans, %d points, %d left open)\n",
		st.Events, st.Spans, st.Points, st.Open)

	if listSpans {
		var events []obs.JournalEvent
		dec := json.NewDecoder(bytes.NewReader(raw))
		for dec.More() {
			var ev obs.JournalEvent
			if err := dec.Decode(&ev); err != nil {
				fmt.Fprintln(os.Stderr, "pythia-journal:", err)
				os.Exit(1)
			}
			events = append(events, ev)
		}
		for _, sp := range obs.SpansOf(events) {
			open := ""
			if sp.Open {
				open = " (open)"
			}
			fmt.Printf("%6d parent=%-6d %8dus %-10s %s%s\n",
				sp.ID, sp.Parent, sp.Dur, sp.Cat, sp.Name, open)
		}
	}
}
