// Command pythia-attack mounts the paper's control-flow-bending attacks
// (including the three §2.2/§3.1 motivating examples) against a chosen
// defense scheme and reports whether each attack bent the control flow
// or was detected — and by which mechanism.
//
// Usage:
//
//	pythia-attack                       # full matrix: corpus x schemes
//	pythia-attack -case pointer-dualism # one case, all schemes
//	pythia-attack -scheme pythia        # all cases, one scheme
//	pythia-attack -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
)

var schemeNames = map[string]core.Scheme{
	"vanilla": core.SchemeVanilla,
	"cpa":     core.SchemeCPA,
	"pythia":  core.SchemePythia,
	"dfi":     core.SchemeDFI,
}

func main() {
	var (
		caseName   = flag.String("case", "", "run only this attack case")
		schemeName = flag.String("scheme", "", "run only this scheme")
		list       = flag.Bool("list", false, "list attack cases and exit")
	)
	flag.Parse()

	if *list {
		for _, c := range attack.Corpus() {
			fmt.Printf("%-26s %s\n", c.Name, c.Kind)
		}
		return
	}

	cases := attack.Corpus()
	if *caseName != "" {
		c := attack.CaseByName(*caseName)
		if c == nil {
			fmt.Fprintf(os.Stderr, "pythia-attack: unknown case %q\n", *caseName)
			os.Exit(2)
		}
		cases = []attack.Case{*c}
	}
	schemes := core.Schemes
	if *schemeName != "" {
		s, ok := schemeNames[*schemeName]
		if !ok {
			fmt.Fprintf(os.Stderr, "pythia-attack: unknown scheme %q\n", *schemeName)
			os.Exit(2)
		}
		schemes = []core.Scheme{s}
	}

	fmt.Printf("%-26s %-9s %-8s %-22s %s\n", "case", "scheme", "benign", "attack", "detecting fault")
	exitCode := 0
	for _, c := range cases {
		c := c
		for _, s := range schemes {
			o, err := attack.Run(&c, s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pythia-attack: %s/%v: %v\n", c.Name, s, err)
				os.Exit(1)
			}
			faultDesc := "-"
			if o.Fault != nil {
				faultDesc = o.Fault.Error()
				if len(faultDesc) > 60 {
					faultDesc = faultDesc[:60] + "..."
				}
			}
			fmt.Printf("%-26s %-9v %-8v %-22v %s\n", c.Name, s, o.Benign, o.Attack, faultDesc)
			// A protected scheme letting the attack bend is the signal
			// the harness exists to expose; reflect it in the exit code.
			if s == core.SchemePythia && o.Attack == attack.VerdictBent {
				exitCode = 1
			}
		}
	}
	os.Exit(exitCode)
}
