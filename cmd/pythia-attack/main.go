// Command pythia-attack mounts the paper's control-flow-bending attacks
// (including the three §2.2/§3.1 motivating examples) against a chosen
// defense scheme and reports whether each attack bent the control flow
// or was detected — and by which mechanism.
//
// Usage:
//
//	pythia-attack                       # full matrix: corpus x schemes
//	pythia-attack -case pointer-dualism # one case, all schemes
//	pythia-attack -scheme pythia        # all cases, one scheme
//	pythia-attack -json                 # Outcome matrix as one JSON document
//	pythia-attack -forensics            # flight-recorder window under each detection
//	pythia-attack -metrics m.json       # metrics registry dump ("-" = text to stderr)
//	pythia-attack -journal j.jsonl      # causal run journal (JSONL)
//	pythia-attack -list
//
// Every attacked machine runs with the fault flight recorder armed, so a
// detection carries the last-N executed instructions, the faulting
// address, and its memory segment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/obs"
)

var schemeNames = map[string]core.Scheme{
	"vanilla": core.SchemeVanilla,
	"cpa":     core.SchemeCPA,
	"pythia":  core.SchemePythia,
	"dfi":     core.SchemeDFI,
}

func main() {
	var (
		caseName   = flag.String("case", "", "run only this attack case")
		schemeName = flag.String("scheme", "", "run only this scheme")
		list       = flag.Bool("list", false, "list attack cases and exit")
		jsonOut    = flag.Bool("json", false, "emit the outcome matrix as one JSON document")
		forensics  = flag.Bool("forensics", false, "print the flight-recorder report under each detection")
		metrics    = flag.String("metrics", "", "write a metrics registry dump — counters, gauges, and latency histograms (vm.run.ms quantiles) — to this file (\"-\" = text to stderr)")
		journalOut = flag.String("journal", "", "stream the causal run journal to this file as JSONL")
	)
	flag.Parse()

	// writeMetrics dumps the registry and journal populated during the
	// run; called explicitly before the final exit because os.Exit skips
	// defers.
	writeMetrics := func() {}
	if *metrics != "" || *journalOut != "" {
		if *metrics != "" && *metrics != "-" {
			if f, err := os.OpenFile(*metrics, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "pythia-attack: unwritable -metrics path: %v\n", err)
				flag.Usage()
				os.Exit(2)
			} else {
				f.Close()
			}
		}
		sess := &obs.Session{}
		if *metrics != "" {
			sess.Metrics = obs.Default()
		}
		if *journalOut != "" {
			j, err := obs.OpenJournal(*journalOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pythia-attack: invalid -journal: %v\n", err)
				flag.Usage()
				os.Exit(2)
			}
			sess.Journal = j
		}
		obs.Start(sess)
		path := *metrics
		writeMetrics = func() {
			obs.Stop()
			if err := sess.Journal.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pythia-attack:", err)
				os.Exit(1)
			}
			if sess.Metrics == nil {
				return
			}
			if path == "-" {
				sess.Metrics.WriteText(os.Stderr)
				return
			}
			f, err := os.Create(path)
			if err == nil {
				err = sess.Metrics.WriteJSON(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "pythia-attack:", err)
				os.Exit(1)
			}
		}
	}

	if *list {
		for _, c := range attack.Corpus() {
			fmt.Printf("%-26s %s\n", c.Name, c.Kind)
		}
		return
	}

	cases := attack.Corpus()
	if *caseName != "" {
		c := attack.CaseByName(*caseName)
		if c == nil {
			fmt.Fprintf(os.Stderr, "pythia-attack: unknown case %q\n", *caseName)
			os.Exit(2)
		}
		cases = []attack.Case{*c}
	}
	schemes := core.Schemes
	if *schemeName != "" {
		s, ok := schemeNames[*schemeName]
		if !ok {
			fmt.Fprintf(os.Stderr, "pythia-attack: unknown scheme %q\n", *schemeName)
			os.Exit(2)
		}
		schemes = []core.Scheme{s}
	}

	var outcomes []jsonOutcome
	if !*jsonOut {
		fmt.Printf("%-26s %-9s %-8s %-22s %s\n", "case", "scheme", "benign", "attack", "detecting fault")
	}
	exitCode := 0
	for _, c := range cases {
		c := c
		for _, s := range schemes {
			o, err := attack.Run(&c, s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pythia-attack: %s/%v: %v\n", c.Name, s, err)
				os.Exit(1)
			}
			if *jsonOut {
				outcomes = append(outcomes, toJSON(o))
			} else {
				faultDesc := "-"
				if o.Fault != nil {
					faultDesc = o.Fault.Error()
					if len(faultDesc) > 60 {
						faultDesc = faultDesc[:60] + "..."
					}
				}
				fmt.Printf("%-26s %-9v %-8v %-22v %s\n", c.Name, s, o.Benign, o.Attack, faultDesc)
				if *forensics && o.Fault != nil && o.Fault.Forensics != nil {
					o.Fault.Forensics.Render(os.Stdout, "    ")
				}
			}
			// A protected scheme letting the attack bend is the signal
			// the harness exists to expose; reflect it in the exit code.
			if s == core.SchemePythia && o.Attack == attack.VerdictBent {
				exitCode = 1
			}
		}
	}
	if *jsonOut {
		out, err := json.MarshalIndent(struct {
			Outcomes []jsonOutcome `json:"outcomes"`
		}{outcomes}, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "pythia-attack:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	}
	writeMetrics()
	os.Exit(exitCode)
}

// jsonOutcome is one row of the -json matrix.
type jsonOutcome struct {
	Case      string           `json:"case"`
	Scheme    string           `json:"scheme"`
	Benign    string           `json:"benign"`
	Attack    string           `json:"attack"`
	Detector  string           `json:"detector,omitempty"` // fault kind, when detected
	Fault     string           `json:"fault,omitempty"`
	Forensics *obs.FaultReport `json:"forensics,omitempty"`
	PAUsed    int64            `json:"pa_used"`
}

func toJSON(o *attack.Outcome) jsonOutcome {
	j := jsonOutcome{
		Case:   o.Case,
		Scheme: fmt.Sprintf("%v", o.Scheme),
		Benign: o.Benign.String(),
		Attack: o.Attack.String(),
		PAUsed: o.PAUsed,
	}
	if o.Fault != nil {
		j.Detector = o.Fault.Kind.String()
		j.Fault = o.Fault.Error()
		j.Forensics = o.Fault.Forensics
	}
	return j
}
