package cmd_test

// pythiad end-to-end: the daemon is built as a real binary, driven over
// HTTP, and shut down with SIGTERM — the full lifecycle a deployment
// sees. Verdict ground truth comes from the in-process attack engine,
// so the service and the attack matrix can never drift apart silently.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/obs"
)

// pythiad is a running daemon under test.
type pythiad struct {
	cmd     *exec.Cmd
	base    string // http://host:port
	stderr  *bytes.Buffer
	mu      sync.Mutex
	drained chan struct{} // closed when the stderr reader hits EOF
}

// startPythiad launches the built binary on an ephemeral port and
// scrapes the bound address off its stderr listen line.
func startPythiad(t *testing.T, extra ...string) *pythiad {
	t.Helper()
	bin := builtBinary(t, "pythiad")
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Dir = ".."
	pipe, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &pythiad{cmd: cmd, stderr: &bytes.Buffer{}, drained: make(chan struct{})}
	sc := bufio.NewScanner(pipe)
	for sc.Scan() {
		line := sc.Text()
		d.mu.Lock()
		d.stderr.WriteString(line + "\n")
		d.mu.Unlock()
		if strings.Contains(line, "pythiad: listening on ") {
			addr := strings.Fields(strings.TrimPrefix(line, "pythiad: listening on "))[0]
			d.base = "http://" + addr
			break
		}
	}
	if d.base == "" {
		cmd.Process.Kill()
		t.Fatalf("listen line not found on stderr:\n%s", d.stderr.String())
	}
	// Keep draining stderr so the child never blocks on the pipe.
	go func() {
		defer close(d.drained)
		for sc.Scan() {
			d.mu.Lock()
			d.stderr.WriteString(sc.Text() + "\n")
			d.mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return d
}

// stop SIGTERMs the daemon and asserts a clean (exit 0) drain.
func (d *pythiad) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Let the stderr reader reach EOF before Wait closes the pipe out
	// from under it — otherwise the farewell line can be lost.
	<-d.drained
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM shutdown must exit 0, got %v\n%s", err, d.stderrText())
	}
	if !strings.Contains(d.stderrText(), "drained, bye") {
		t.Fatalf("drain farewell missing from stderr:\n%s", d.stderrText())
	}
}

func (d *pythiad) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// submitResp mirrors the service's SubmitResponse wire shape.
type submitResp struct {
	Verdict  string `json:"verdict"`
	Scheme   string `json:"scheme"`
	Tenant   string `json:"tenant"`
	Ret      int64  `json:"ret"`
	CacheHit bool   `json:"cache_hit"`
	Fault    *struct {
		Kind string `json:"kind"`
	} `json:"fault"`
	Pages int `json:"pages"`
}

// submit POSTs one request and decodes the response, asserting the
// expected status code.
func (d *pythiad) submit(t *testing.T, body map[string]any, wantStatus int) *submitResp {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.base+"/api/v1/submit", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("submit status %d, want %d:\n%s", resp.StatusCode, wantStatus, payload)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var out submitResp
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("submit response does not parse: %v\n%s", err, payload)
	}
	return &out
}

// TestPythiadVerdictsMatchAttackEngine drives the daemon through the
// full lifecycle: verdicts across all four schemes against in-process
// ground truth, cache hits on resubmission, a 4-tenant concurrent
// hammer, the stats/tenants surfaces, and a validated journal after a
// graceful SIGTERM.
func TestPythiadVerdictsMatchAttackEngine(t *testing.T) {
	journal := t.TempDir() + "/pythiad.jsonl"
	cache := t.TempDir()
	d := startPythiad(t, "-journal", journal, "-cache-dir", cache, "-workers", "4")
	c := attack.Corpus()[0]

	// Verdict matrix vs the attack engine, benign and malicious.
	schemes := []string{"vanilla", "cpa", "pythia", "dfi"}
	pl := core.NewPipeline()
	for _, scheme := range schemes {
		truth, err := attack.RunWith(pl, &c, schemeByName(t, scheme))
		if err != nil {
			t.Fatal(err)
		}
		for _, in := range []struct {
			stdin, want string
		}{{c.Benign, truth.Benign.String()}, {c.Malicious, truth.Attack.String()}} {
			got := d.submit(t, map[string]any{
				"source": c.Source, "scheme": scheme, "stdin": in.stdin,
			}, http.StatusOK)
			if got.Verdict != in.want {
				t.Errorf("%s: daemon verdict %q, attack engine says %q", scheme, got.Verdict, in.want)
			}
		}
	}

	// Second identical submission is a cache hit.
	again := d.submit(t, map[string]any{
		"source": c.Source, "scheme": "pythia", "stdin": c.Benign,
	}, http.StatusOK)
	if !again.CacheHit {
		t.Error("resubmission must report cache_hit")
	}

	// Contract violations map to 400.
	d.submit(t, map[string]any{"source": c.Source, "scheme": "bogus"}, http.StatusBadRequest)
	d.submit(t, map[string]any{"scheme": "pythia"}, http.StatusBadRequest)

	// 4-tenant concurrent hammer through real HTTP.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			raw, _ := json.Marshal(map[string]any{
				"source": c.Source, "scheme": schemes[i%4], "stdin": c.Benign,
				"tenant": fmt.Sprintf("tenant-%d", i%4),
			})
			resp, err := http.Post(d.base+"/api/v1/submit", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("hammer %d: status %d", i, resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The tenants surface saw all four.
	var tenants struct {
		Tenants []struct {
			Name      string `json:"name"`
			Completed int64  `json:"completed"`
		} `json:"tenants"`
	}
	getJSON(t, d.base+"/api/v1/tenants", &tenants)
	names := 0
	for _, ts := range tenants.Tenants {
		if strings.HasPrefix(ts.Name, "tenant-") {
			names++
		}
	}
	if names != 4 {
		t.Errorf("tenant ledger has %d hammer tenants, want 4:\n%+v", names, tenants)
	}

	// Stats reflect the persistent store behind -cache-dir.
	var stats struct {
		Workers   int `json:"workers"`
		Artifacts *struct {
			Entries int `json:"entries"`
		} `json:"artifacts"`
	}
	getJSON(t, d.base+"/api/v1/stats", &stats)
	if stats.Workers != 4 {
		t.Errorf("stats workers = %d, want 4", stats.Workers)
	}
	if stats.Artifacts == nil || stats.Artifacts.Entries == 0 {
		t.Errorf("stats must report artifact-store entries: %+v", stats)
	}

	// Observability endpoints ride along on the same mux.
	if resp, err := http.Get(d.base + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	// Graceful shutdown, then the journal must validate.
	d.stop(t)
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	st, err := obs.ValidateJournal(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("journal does not validate: %v", err)
	}
	if st.Events == 0 {
		t.Fatal("journal is empty after a full session")
	}
}

// TestPythiadOOMVerdict: a page-quota-exceeding submission comes back
// as a clean crashed/oom verdict over the wire.
func TestPythiadOOMVerdict(t *testing.T) {
	d := startPythiad(t)
	hog := `
int main() {
	char *p = malloc(262144);
	int i;
	for (i = 0; i < 64; i = i + 1) {
		p[i * 4096] = 1;
	}
	return 7;
}`
	probe := d.submit(t, map[string]any{"source": hog, "scheme": "vanilla"}, http.StatusOK)
	if probe.Fault != nil {
		t.Fatalf("unlimited probe faulted: %+v", probe.Fault)
	}
	oom := d.submit(t, map[string]any{
		"source": hog, "scheme": "vanilla", "max_pages": probe.Pages - 16,
	}, http.StatusOK)
	if oom.Verdict != "crashed" || oom.Fault == nil || oom.Fault.Kind != "oom" {
		t.Fatalf("quota'd run: %+v, want crashed/oom", oom)
	}
	d.stop(t)
}

func TestPythiadRejectsCacheMaxWithoutDir(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythiad"), "-cache-max-bytes needs -cache-dir",
		"-cache-max-bytes", "1024")
}

func TestPythiadRejectsNegativeSizing(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythiad"), "sizing flags must be >= 0",
		"-workers", "-1")
}

func TestPythiadRejectsPositionalArgs(t *testing.T) {
	expectExit2(t, builtBinary(t, "pythiad"), "unexpected arguments", "stray")
}

// schemeByName maps the wire scheme name to the core enum.
func schemeByName(t *testing.T, name string) core.Scheme {
	t.Helper()
	switch name {
	case "vanilla":
		return core.SchemeVanilla
	case "cpa":
		return core.SchemeCPA
	case "pythia":
		return core.SchemePythia
	case "dfi":
		return core.SchemeDFI
	}
	t.Fatalf("unknown scheme %q", name)
	return 0
}

// getJSON fetches and decodes a JSON endpoint.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("GET %s: %v\n%s", url, err, body)
	}
}
